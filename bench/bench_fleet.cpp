// Fleet-scale serving benchmark: N simulated streaming sessions trickling
// stride-sized chunks into a multi-cipher Engine, legacy per-session
// scoring vs the cross-session WindowBatcher.
//
// Workload shape: ONE ingest driver thread round-robins over every open
// stream, feeding one stride-sized chunk per visit — the shape of a
// network poll loop owning thousands of probe connections. On the legacy
// path that thread also pays for scoring inline (mostly one-window GEMMs:
// a stride of new samples readies at most one window); on the batched path
// it only pushes into wait-free ingest rings while the batcher coalesces
// windows across all sessions into shared max_batch_windows-row GEMMs.
// The throughput gap between those two rows is the whole point of the
// serving plane, and the "speedup_vs_legacy" field is gated in CI
// (bench/thresholds/fleet.json).
//
// Parity is the hard constraint, not a statistic: every session's
// detections — batched or legacy — must be bit-identical to the offline
// locate of the exact samples it was fed. Any divergence increments
// parity_failures (gated at zero) and the process exits nonzero.
//
// Curves emitted into BENCH_fleet.json:
//   rows[]    throughput vs session count (legacy + batched + speedup)
//   cores[]   batched throughput vs batch_intra_op_threads at a fixed
//             session count
// plus the p99 emission lag (samples between stream head and detection
// start at finalization) from the stream telemetry histogram, and each
// row's full registry snapshot.
//
// Knobs: SCALOCATE_SCALE scales per-session sample counts;
// SCALOCATE_FLEET_SESSIONS="64,256,1024" overrides the session-count
// sweep (default 1024,4096,10240 — sized for a workstation; CI smoke uses
// the override).
#include <cstdio>
#include <cstring>
#include <thread>

#include "api/scalocate.hpp"
#include "bench_common.hpp"
#include "obs/registry.hpp"

using namespace scalocate;

namespace {

/// Session-count sweep: env override or the full-scale default.
std::vector<std::size_t> session_counts() {
  std::vector<std::size_t> out;
  if (const char* env = std::getenv("SCALOCATE_FLEET_SESSIONS")) {
    const char* p = env;
    while (*p != '\0') {
      char* end = nullptr;
      const unsigned long v = std::strtoul(p, &end, 10);
      if (end == p) break;
      if (v > 0) out.push_back(static_cast<std::size_t>(v));
      p = (*end == ',') ? end + 1 : end;
    }
  }
  if (out.empty()) out = {1024, 4096, 10240};
  return out;
}

struct FleetModel {
  const core::CoLocator* locator = nullptr;
  crypto::CipherId cipher;
  std::size_t stride = 0;
  /// Per-session drive: a prefix of one of a few distinct eval traces.
  std::vector<std::span<const float>> drives;
  /// Offline locate() of each drive — the parity reference.
  std::vector<std::vector<std::size_t>> reference;
};

struct RunResult {
  double wall_seconds = 0.0;
  std::uint64_t samples = 0;
  std::size_t parity_failures = 0;
  double p99_lag_samples = 0.0;
  std::string metrics_json_embedded;  // unused; registry passed separately
};

/// Drives `n_sessions` streams round-robin from this thread, one
/// stride-sized chunk per visit, finishes them all, and checks parity.
RunResult drive_fleet(api::Engine& engine, const std::vector<FleetModel>& models,
                      std::size_t n_sessions) {
  struct Sim {
    api::Stream stream;
    const FleetModel* model;
    std::size_t drive;   ///< index into model->drives
    std::size_t offset = 0;
    std::vector<std::size_t> got;
  };
  std::vector<Sim> sims;
  sims.reserve(n_sessions);
  std::vector<api::Session> sessions;
  sessions.reserve(models.size());
  for (const auto& m : models) sessions.push_back(engine.open_session(m.cipher));

  for (std::size_t i = 0; i < n_sessions; ++i) {
    const std::size_t mi = i % models.size();
    const FleetModel& m = models[mi];
    sims.push_back(Sim{sessions[mi].open_stream(), &m,
                       i % m.drives.size(), 0, {}});
  }

  RunResult r;
  bench::Timer timer;
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& s : sims) {
      const std::span<const float> drive = s.model->drives[s.drive];
      if (s.offset >= drive.size()) continue;
      const std::size_t n = std::min(s.model->stride, drive.size() - s.offset);
      for (const auto& d : s.stream.feed(drive.subspan(s.offset, n)))
        s.got.push_back(d.start);
      s.offset += n;
      r.samples += n;
      progress = true;
    }
  }
  for (auto& s : sims)
    for (const auto& d : s.stream.finish()) s.got.push_back(d.start);
  r.wall_seconds = timer.seconds();

  for (auto& s : sims)
    if (s.got != s.model->reference[s.drive]) ++r.parity_failures;
  return r;
}

void row_to_json(obs::JsonWriter& json, const char* mode, std::size_t sessions,
                 const RunResult& r, obs::Registry& registry) {
  json.begin_object();
  json.kv("mode", mode);
  json.kv("sessions", sessions);
  json.kv("wall_seconds", r.wall_seconds);
  json.kv("samples", r.samples);
  json.kv("samples_per_s",
          r.wall_seconds > 0.0
              ? static_cast<double>(r.samples) / r.wall_seconds
              : 0.0);
  json.kv("parity_failures", r.parity_failures);
  json.kv("p99_emission_lag_samples", r.p99_lag_samples);
  json.key("metrics");
  registry.render_json_into(json);
  json.end_object();
}

}  // namespace

int main() {
  std::printf("== bench_fleet: cross-session dynamic batching ==\n");
  std::printf("scale=%.2f  hardware threads=%u\n\n", bench::scale(),
              std::thread::hardware_concurrency());

  // Two ciphers so every batched row exercises per-model batcher isolation
  // (windows only coalesce within a model, never across ciphers).
  bench::Timer setup_timer;
  auto aes = bench::train_locator(crypto::CipherId::kAes128,
                                  trace::RandomDelayConfig::kRd2, 0xf1ee7,
                                  /*n_captures=*/256, /*noise_instr=*/60000);
  auto camellia = bench::train_locator(crypto::CipherId::kCamellia128,
                                       trace::RandomDelayConfig::kRd2, 0xf1ee8,
                                       /*n_captures=*/128, /*noise_instr=*/60000);
  const double train_seconds = setup_timer.seconds();
  std::printf("trained 2 models in %.1f s (aes acc %.3f, camellia acc %.3f)\n",
              train_seconds, aes.report.test_confusion.accuracy(),
              camellia.report.test_confusion.accuracy());

  // Per-session drive length: enough samples for a handful of windows and
  // typically >= 1 CO. Every session replays one of a few distinct traces,
  // so offline references are computed once per (model, drive).
  const std::size_t drive_samples = bench::scaled(8192);
  const std::size_t kDistinctTraces = 3;
  std::vector<FleetModel> models(2);
  bench::TrainedSetup* setups[2] = {&aes, &camellia};
  std::vector<std::vector<float>> storage;  // keeps trace samples alive
  for (std::size_t mi = 0; mi < 2; ++mi) {
    FleetModel& m = models[mi];
    m.locator = &setups[mi]->locator;
    m.cipher = setups[mi]->scenario.cipher;
    m.stride = m.locator->config().params.stride;
    for (std::size_t t = 0; t < kDistinctTraces; ++t) {
      auto trace = trace::acquire_eval_trace(setups[mi]->scenario, 3 + t,
                                             setups[mi]->key, false);
      storage.push_back(std::move(trace.samples));
      auto& samples = storage.back();
      const std::size_t len = std::min(drive_samples, samples.size());
      m.drives.push_back(std::span<const float>(samples.data(), len));
      m.reference.push_back(
          m.locator->locate(std::span<const float>(samples.data(), len)));
    }
  }

  obs::JsonWriter json;
  json.begin_object();
  json.kv("bench", "fleet");
  json.kv("scale", bench::scale());
  json.kv("epochs", bench::bench_epochs());
  json.kv("hardware_threads",
          static_cast<std::size_t>(std::thread::hardware_concurrency()));
  json.kv("train_seconds", train_seconds);
  json.kv("drive_samples", drive_samples);

  const auto counts = session_counts();
  std::size_t parity_total = 0;

  auto p99_lag = [](obs::Registry& registry, const char* name) {
    return registry.histogram(name).snapshot().quantile(0.99);
  };

  // -- throughput vs session count: legacy (per-session scoring on the
  // ingest thread) against batched (cross-session GEMM coalescing) --------
  json.key("rows").begin_array();
  std::printf("\n%8s  %10s  %14s  %14s  %8s\n", "sessions", "mode",
              "samples/s", "wall_s", "parity");
  double largest_speedup = 0.0;
  for (const std::size_t n_sessions : counts) {
    obs::Registry legacy_reg;
    api::EngineConfig legacy_cfg;
    legacy_cfg.workers = 1;
    legacy_cfg.registry = &legacy_reg;
    api::Engine legacy(legacy_cfg);
    legacy.attach_model(aes.locator);
    legacy.attach_model(camellia.locator);
    RunResult lr = drive_fleet(legacy, models, n_sessions);
    lr.p99_lag_samples = p99_lag(legacy_reg, "stream.aes.emission_lag_samples");
    parity_total += lr.parity_failures;
    row_to_json(json, "legacy", n_sessions, lr, legacy_reg);
    std::printf("%8zu  %10s  %14.0f  %14.2f  %8zu\n", n_sessions, "legacy",
                lr.wall_seconds > 0
                    ? static_cast<double>(lr.samples) / lr.wall_seconds
                    : 0.0,
                lr.wall_seconds, lr.parity_failures);

    obs::Registry batched_reg;
    api::EngineConfig batched_cfg;
    batched_cfg.workers = 1;
    batched_cfg.registry = &batched_reg;
    batched_cfg.max_batch_windows = 256;
    batched_cfg.batch_linger_us = 200;
    api::Engine batched(batched_cfg);
    batched.attach_model(aes.locator);
    batched.attach_model(camellia.locator);
    RunResult br = drive_fleet(batched, models, n_sessions);
    br.p99_lag_samples =
        p99_lag(batched_reg, "stream.aes.emission_lag_samples");
    parity_total += br.parity_failures;
    row_to_json(json, "batched", n_sessions, br, batched_reg);
    const double speedup =
        (lr.wall_seconds > 0 && br.wall_seconds > 0)
            ? lr.wall_seconds / br.wall_seconds
            : 0.0;
    std::printf("%8zu  %10s  %14.0f  %14.2f  %8zu  (speedup %.2fx)\n",
                n_sessions, "batched",
                br.wall_seconds > 0
                    ? static_cast<double>(br.samples) / br.wall_seconds
                    : 0.0,
                br.wall_seconds, br.parity_failures, speedup);
    largest_speedup = speedup;  // last row = largest session count
  }
  json.end_array();

  // Speedup summary per row is derivable from rows[]; the gated headline is
  // the largest-session-count ratio.
  json.kv("speedup_at_max_sessions", largest_speedup);

  // -- throughput vs intra-op cores at a fixed session count --------------
  const std::size_t core_sessions = counts.front();
  json.key("cores").begin_array();
  std::printf("\ncores curve (batched, %zu sessions):\n", core_sessions);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (const std::size_t threads : {1u, 2u, 4u}) {
    if (threads > hw && threads != 1) continue;
    obs::Registry registry;
    api::EngineConfig cfg;
    cfg.workers = 1;
    cfg.registry = &registry;
    cfg.max_batch_windows = 256;
    cfg.batch_linger_us = 200;
    cfg.batch_intra_op_threads = threads;
    api::Engine engine(cfg);
    engine.attach_model(aes.locator);
    engine.attach_model(camellia.locator);
    RunResult r = drive_fleet(engine, models, core_sessions);
    r.p99_lag_samples = p99_lag(registry, "stream.aes.emission_lag_samples");
    parity_total += r.parity_failures;
    json.begin_object();
    json.kv("intra_op_threads", threads);
    json.kv("sessions", core_sessions);
    json.kv("wall_seconds", r.wall_seconds);
    json.kv("samples_per_s",
            r.wall_seconds > 0.0
                ? static_cast<double>(r.samples) / r.wall_seconds
                : 0.0);
    json.kv("parity_failures", r.parity_failures);
    json.end_object();
    std::printf("  %zu thread(s): %.0f samples/s (parity %zu)\n", threads,
                r.wall_seconds > 0
                    ? static_cast<double>(r.samples) / r.wall_seconds
                    : 0.0,
                r.parity_failures);
  }
  json.end_array();

  json.kv("parity_failures", parity_total);
  json.end_object();
  bench::write_bench_json("fleet", json);

  if (parity_total > 0) {
    std::fprintf(stderr,
                 "bench_fleet: %zu session(s) diverged from offline locate\n",
                 parity_total);
    return 1;
  }
  std::printf("\nall sessions bit-identical to offline locate\n");
  return 0;
}
