// Shared helpers for the benchmark/reproduction harnesses.
//
// Every bench prints the paper's rows next to the measured ones. Workload
// sizes scale with the SCALOCATE_SCALE environment variable (default 1.0;
// e.g. SCALOCATE_SCALE=4 for a deeper run, =0.5 for a smoke run).
#pragma once

#include <chrono>
#include <cstdlib>
#include <cstdio>
#include <string>

#include "core/locator.hpp"
#include "core/metrics.hpp"
#include "trace/scenario.hpp"

namespace scalocate::bench {

inline double scale() {
  if (const char* s = std::getenv("SCALOCATE_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 1.0;
}

inline std::size_t scaled(std::size_t base) {
  const auto v = static_cast<std::size_t>(static_cast<double>(base) * scale());
  return v > 0 ? v : 1;
}

/// Epochs used by the bench trainings (env SCALOCATE_EPOCHS, default 10:
/// enough for >90% test accuracy on the scaled datasets while keeping the
/// full suite within minutes; see EXPERIMENTS.md).
inline std::size_t bench_epochs() {
  if (const char* s = std::getenv("SCALOCATE_EPOCHS")) {
    const auto v = static_cast<std::size_t>(std::atoi(s));
    if (v > 0) return v;
  }
  return 10;
}

struct Timer {
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  }
};

/// Trains a locator for one (cipher, RD) pair on freshly acquired traces.
struct TrainedSetup {
  core::CoLocator locator;
  core::TrainReport report;
  crypto::Key16 key;
  trace::ScenarioConfig scenario;
};

inline TrainedSetup train_locator(crypto::CipherId cipher,
                                  trace::RandomDelayConfig rd,
                                  std::uint64_t seed,
                                  std::size_t n_captures = 512,
                                  std::size_t noise_instr = 150000) {
  trace::ScenarioConfig sc;
  sc.cipher = cipher;
  sc.random_delay = rd;
  sc.seed = seed;

  crypto::Key16 key{};
  for (int i = 0; i < 16; ++i)
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0x10 + i);

  auto acq = trace::acquire_cipher_traces(sc, scaled(n_captures), key);
  auto noise = trace::acquire_noise_trace(sc, scaled(noise_instr));

  core::LocatorConfig lc;
  lc.params = core::PipelineParams::defaults_for(cipher);
  lc.params.epochs = bench_epochs();
  lc.seed = seed ^ 0x10cULL;
  TrainedSetup setup{core::CoLocator(lc), {}, key, sc};
  setup.report = setup.locator.train(acq, noise);
  return setup;
}

}  // namespace scalocate::bench
