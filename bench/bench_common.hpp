// Shared helpers for the benchmark/reproduction harnesses.
//
// Every bench prints the paper's rows next to the measured ones. Workload
// sizes scale with the SCALOCATE_SCALE environment variable (default 1.0;
// e.g. SCALOCATE_SCALE=4 for a deeper run, =0.5 for a smoke run).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/locator.hpp"
#include "core/metrics.hpp"
#include "trace/scenario.hpp"

namespace scalocate::bench {

inline double scale() {
  if (const char* s = std::getenv("SCALOCATE_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 1.0;
}

inline std::size_t scaled(std::size_t base) {
  const auto v = static_cast<std::size_t>(static_cast<double>(base) * scale());
  return v > 0 ? v : 1;
}

/// Epochs used by the bench trainings (env SCALOCATE_EPOCHS, default 10:
/// enough for >90% test accuracy on the scaled datasets while keeping the
/// full suite within minutes; see EXPERIMENTS.md).
inline std::size_t bench_epochs() {
  if (const char* s = std::getenv("SCALOCATE_EPOCHS")) {
    const auto v = static_cast<std::size_t>(std::atoi(s));
    if (v > 0) return v;
  }
  return 10;
}

struct Timer {
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  }
};

/// Linear-interpolated percentile of a sample set; q in [0, 1]. Sorts a
/// copy, so callers can pass their raw latency log.
inline double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (q <= 0.0) return values.front();
  if (q >= 1.0) return values.back();
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

/// Latency/throughput summary of one benchmark run (latencies in seconds
/// in, milliseconds out). Shared by bench_service and available to every
/// bench that measures per-item times.
struct LatencySummary {
  std::size_t count = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  double throughput_per_s = 0.0;  ///< items per wall-clock second
};

inline LatencySummary summarize_latencies(
    const std::vector<double>& latencies_seconds, double wall_seconds) {
  LatencySummary s;
  s.count = latencies_seconds.size();
  if (s.count == 0) return s;
  double acc = 0.0;
  double mx = 0.0;
  for (double v : latencies_seconds) {
    acc += v;
    mx = std::max(mx, v);
  }
  s.mean_ms = 1e3 * acc / static_cast<double>(s.count);
  s.max_ms = 1e3 * mx;
  s.p50_ms = 1e3 * percentile(latencies_seconds, 0.50);
  s.p99_ms = 1e3 * percentile(latencies_seconds, 0.99);
  s.throughput_per_s =
      wall_seconds > 0.0 ? static_cast<double>(s.count) / wall_seconds : 0.0;
  return s;
}

/// Trains a locator for one (cipher, RD) pair on freshly acquired traces.
struct TrainedSetup {
  core::CoLocator locator;
  core::TrainReport report;
  crypto::Key16 key;
  trace::ScenarioConfig scenario;
};

inline TrainedSetup train_locator(
    crypto::CipherId cipher, trace::RandomDelayConfig rd, std::uint64_t seed,
    std::size_t n_captures = 512, std::size_t noise_instr = 150000,
    const std::function<void(core::LocatorConfig&)>& tweak = {}) {
  trace::ScenarioConfig sc;
  sc.cipher = cipher;
  sc.random_delay = rd;
  sc.seed = seed;

  crypto::Key16 key{};
  for (int i = 0; i < 16; ++i)
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0x10 + i);

  auto acq = trace::acquire_cipher_traces(sc, scaled(n_captures), key);
  auto noise = trace::acquire_noise_trace(sc, scaled(noise_instr));

  core::LocatorConfig lc;
  lc.params = core::PipelineParams::defaults_for(cipher);
  lc.params.epochs = bench_epochs();
  lc.seed = seed ^ 0x10cULL;
  if (tweak) tweak(lc);
  TrainedSetup setup{core::CoLocator(lc), {}, key, sc};
  setup.report = setup.locator.train(acq, noise);
  return setup;
}

}  // namespace scalocate::bench
