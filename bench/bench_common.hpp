// Shared helpers for the benchmark/reproduction harnesses.
//
// Every bench prints the paper's rows next to the measured ones. Workload
// sizes scale with the SCALOCATE_SCALE environment variable (default 1.0;
// e.g. SCALOCATE_SCALE=4 for a deeper run, =0.5 for a smoke run).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/locator.hpp"
#include "core/metrics.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "trace/scenario.hpp"

namespace scalocate::bench {

inline double scale() {
  if (const char* s = std::getenv("SCALOCATE_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 1.0;
}

inline std::size_t scaled(std::size_t base) {
  const auto v = static_cast<std::size_t>(static_cast<double>(base) * scale());
  return v > 0 ? v : 1;
}

/// Epochs used by the bench trainings (env SCALOCATE_EPOCHS, default 10:
/// enough for >90% test accuracy on the scaled datasets while keeping the
/// full suite within minutes; see EXPERIMENTS.md).
inline std::size_t bench_epochs() {
  if (const char* s = std::getenv("SCALOCATE_EPOCHS")) {
    const auto v = static_cast<std::size_t>(std::atoi(s));
    if (v > 0) return v;
  }
  return 10;
}

struct Timer {
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  }
};

/// Linear-interpolated percentile of a sample set; q clamped into [0, 1]
/// (q=0 min, q=1 max; single-sample input returns that sample for any q).
/// Thin forwarder to the system-wide implementation in obs/histogram.hpp —
/// the same rank convention obs::Histogram::Snapshot::quantile answers
/// bucketed queries with, so bench numbers and telemetry snapshots agree.
inline double percentile(std::vector<double> values, double q) {
  return obs::percentile(std::move(values), q);
}

/// Latency/throughput summary of one benchmark run (latencies in seconds
/// in, milliseconds out). Shared by bench_service and available to every
/// bench that measures per-item times.
struct LatencySummary {
  std::size_t count = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  double throughput_per_s = 0.0;  ///< items per wall-clock second
};

inline LatencySummary summarize_latencies(
    const std::vector<double>& latencies_seconds, double wall_seconds) {
  LatencySummary s;
  s.count = latencies_seconds.size();
  if (s.count == 0) return s;
  double acc = 0.0;
  double mx = 0.0;
  for (double v : latencies_seconds) {
    acc += v;
    mx = std::max(mx, v);
  }
  s.mean_ms = 1e3 * acc / static_cast<double>(s.count);
  s.max_ms = 1e3 * mx;
  s.p50_ms = 1e3 * percentile(latencies_seconds, 0.50);
  s.p99_ms = 1e3 * percentile(latencies_seconds, 0.99);
  s.throughput_per_s =
      wall_seconds > 0.0 ? static_cast<double>(s.count) / wall_seconds : 0.0;
  return s;
}

// ---------------------------------------------------------------------------
// BENCH_*.json snapshots: every reproduction bench emits a machine-readable
// twin of its stdout report, so CI can gate on regressions instead of
// reconstructing the perf trajectory from prose. Layout contract (consumed
// by bench_check and the perf-regression CI job): a top-level object with
// "bench" (string), "scale" (double), and bench-specific sections; latency
// summaries always spell out p50_ms/p99_ms/traces_per_s.
// ---------------------------------------------------------------------------

/// Output path for a bench snapshot: $SCALOCATE_BENCH_DIR/BENCH_<name>.json
/// (directory defaults to the working directory).
inline std::string bench_json_path(const std::string& name) {
  std::string dir = ".";
  if (const char* d = std::getenv("SCALOCATE_BENCH_DIR")) dir = d;
  return dir + "/BENCH_" + name + ".json";
}

/// Writes the snapshot and echoes the path on stdout (the CI jobs grep for
/// the "wrote " line to know emission happened).
inline void write_bench_json(const std::string& name,
                             const obs::JsonWriter& writer) {
  const std::string path = bench_json_path(name);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  detail::require(static_cast<bool>(out),
                  "write_bench_json: cannot open " + path);
  out << writer.str() << "\n";
  detail::require(static_cast<bool>(out),
                  "write_bench_json: short write to " + path);
  out.close();
  std::printf("wrote %s\n", path.c_str());
}

/// Emits a LatencySummary as a JSON object value under the current writer
/// position (caller supplies the key).
inline void summary_to_json(obs::JsonWriter& w, const LatencySummary& s) {
  w.begin_object();
  w.kv("count", s.count);
  w.kv("p50_ms", s.p50_ms);
  w.kv("p99_ms", s.p99_ms);
  w.kv("mean_ms", s.mean_ms);
  w.kv("max_ms", s.max_ms);
  w.kv("traces_per_s", s.throughput_per_s);
  w.end_object();
}

/// Trains a locator for one (cipher, RD) pair on freshly acquired traces.
struct TrainedSetup {
  core::CoLocator locator;
  core::TrainReport report;
  crypto::Key16 key;
  trace::ScenarioConfig scenario;
};

inline TrainedSetup train_locator(
    crypto::CipherId cipher, trace::RandomDelayConfig rd, std::uint64_t seed,
    std::size_t n_captures = 512, std::size_t noise_instr = 150000,
    const std::function<void(core::LocatorConfig&)>& tweak = {}) {
  trace::ScenarioConfig sc;
  sc.cipher = cipher;
  sc.random_delay = rd;
  sc.seed = seed;

  crypto::Key16 key{};
  for (int i = 0; i < 16; ++i)
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0x10 + i);

  auto acq = trace::acquire_cipher_traces(sc, scaled(n_captures), key);
  auto noise = trace::acquire_noise_trace(sc, scaled(noise_instr));

  core::LocatorConfig lc;
  lc.params = core::PipelineParams::defaults_for(cipher);
  lc.params.epochs = bench_epochs();
  lc.seed = seed ^ 0x10cULL;
  if (tweak) tweak(lc);
  TrainedSetup setup{core::CoLocator(lc), {}, key, sc};
  setup.report = setup.locator.train(acq, noise);
  return setup;
}

}  // namespace scalocate::bench
