// Reproduces Figure 2: the 1D CNN architecture summary, both the paper's
// exact configuration and the scaled configuration used on the simulator.
#include <cstdio>

#include "core/model.hpp"

using namespace scalocate;

int main() {
  std::printf("=== Figure 2: employed 1D CNN architecture ===\n\n");
  std::printf("--- paper configuration ---\n%s\n",
              core::describe_paper_cnn(core::CnnConfig::paper()).c_str());
  std::printf("--- scaled configuration (simulator windows) ---\n%s\n",
              core::describe_paper_cnn(core::CnnConfig::scaled()).c_str());

  auto net = core::build_paper_cnn(core::CnnConfig::scaled());
  std::size_t params = 0;
  for (auto* p : net->params()) params += p->value.numel();
  std::printf("Trainable parameters (scaled config): %zu\n", params);
  std::printf("Layer stack:\n%s", net->summary().c_str());
  return 0;
}
