// Ablation studies over the design choices DESIGN.md calls out:
//   (a) sliding stride s vs hit rate and runtime (Section III-C knob);
//   (b) segmentation: median filter size and threshold choice (§III-D);
//   (c) inference window size Ninf != Ntrain (the GAP property, Sec. IV-B);
//   (d) the fine-alignment refinement stage (our addition).
//
// One CNN is trained once (AES, RD-2, consecutive-CO evaluation) and reused
// across all sweeps. Sweeps (a)-(c) isolate the swept parameter from the
// calibration stage by applying an *oracle* constant-offset correction (the
// median signed error against ground truth); the full trained pipeline
// including its own two-stage calibration is what (d) and bench_hits
// measure.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace scalocate;

namespace {

/// Applies the best constant offset (median signed error) before scoring,
/// isolating detection quality from calibration quality.
core::HitScore oracle_hits(std::vector<std::size_t> detections,
                           const std::vector<std::size_t>& truth,
                           std::size_t tolerance, double co_length) {
  std::vector<std::ptrdiff_t> offsets;
  const auto half_co = static_cast<std::ptrdiff_t>(co_length / 2.0);
  for (std::size_t t : truth) {
    std::ptrdiff_t best = half_co + 1;
    for (std::size_t d : detections) {
      const auto delta =
          static_cast<std::ptrdiff_t>(d) - static_cast<std::ptrdiff_t>(t);
      if (std::abs(delta) < std::abs(best)) best = delta;
    }
    if (std::abs(best) <= half_co) offsets.push_back(best);
  }
  if (!offsets.empty()) {
    std::nth_element(
        offsets.begin(),
        offsets.begin() + static_cast<std::ptrdiff_t>(offsets.size() / 2),
        offsets.end());
    const std::ptrdiff_t median = offsets[offsets.size() / 2];
    for (auto& d : detections) {
      const auto corrected = static_cast<std::ptrdiff_t>(d) - median;
      d = corrected < 0 ? 0 : static_cast<std::size_t>(corrected);
    }
  }
  return core::score_hits(detections, truth, tolerance);
}

}  // namespace

int main() {
  std::printf("=== Ablations (AES-128, RD-2, consecutive COs) ===\n\n");
  bench::Timer total;
  auto setup = bench::train_locator(crypto::CipherId::kAes128,
                                    trace::RandomDelayConfig::kRd2, 0xab1a7e);
  auto& locator = setup.locator;
  const auto base_params = locator.config().params;
  const std::size_t n_cos = bench::scaled(16);
  auto eval =
      trace::acquire_eval_trace(setup.scenario, n_cos, setup.key, false);
  const auto truth = eval.co_starts();
  const auto tol = base_params.n_inf;
  const double co_len = locator.mean_co_length();

  const auto run_pipeline = [&](std::size_t n_inf, std::size_t stride,
                                std::size_t median_k, float threshold) {
    core::SlidingWindowClassifier cls(locator.model(), n_inf, stride);
    const auto swc = cls.classify(eval.samples);
    core::SegmenterConfig seg_cfg;
    seg_cfg.threshold = threshold;
    seg_cfg.median_filter_k = median_k;
    seg_cfg.window_size = n_inf;
    seg_cfg.expected_co_length = static_cast<std::size_t>(co_len);
    return core::Segmenter(seg_cfg).segment(swc);
  };

  // --- (a) stride sweep -----------------------------------------------------
  {
    std::printf("--- (a) stride s vs hits / throughput (oracle offset) ---\n");
    TextTable table({"s", "windows", "hits", "mean err", "classify s"});
    for (std::size_t s : {24u, 48u, 96u, 192u}) {
      bench::Timer t;
      const auto seg =
          run_pipeline(base_params.n_inf, s, 0, base_params.threshold);
      const double secs = t.seconds();
      const auto score = oracle_hits(seg.co_starts, truth, tol, co_len);
      table.add_row({std::to_string(s),
                     std::to_string((eval.samples.size() - base_params.n_inf) / s + 1),
                     format_percent(score.hit_rate(), 1),
                     format_fixed(score.mean_abs_error, 1),
                     format_fixed(secs, 1)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  // --- (b) median filter / threshold -----------------------------------------
  {
    std::printf("--- (b) segmentation: median k and threshold (oracle offset) ---\n");
    TextTable table({"median k", "threshold", "hits", "mean err", "#detections"});
    for (std::size_t k : {1u, 3u, 7u, 11u, 15u}) {
      const auto seg =
          run_pipeline(base_params.n_inf, base_params.stride, k,
                       base_params.threshold);
      const auto score = oracle_hits(seg.co_starts, truth, tol, co_len);
      table.add_row({std::to_string(k), "0 (margin)",
                     format_percent(score.hit_rate(), 1),
                     format_fixed(score.mean_abs_error, 1),
                     std::to_string(seg.co_starts.size())});
    }
    {
      const auto seg =
          run_pipeline(base_params.n_inf, base_params.stride, 0,
                       std::numeric_limits<float>::quiet_NaN());
      const auto score = oracle_hits(seg.co_starts, truth, tol, co_len);
      table.add_row({"auto", "Otsu", format_percent(score.hit_rate(), 1),
                     format_fixed(score.mean_abs_error, 1),
                     std::to_string(seg.co_starts.size())});
    }
    std::printf("%s\n", table.render().c_str());
  }

  // --- (c) inference window size ---------------------------------------------
  {
    std::printf("--- (c) Ninf sweep (Ntrain = %zu; GAP enables Ninf != Ntrain, "
                "oracle offset) ---\n",
                base_params.n_train);
    TextTable table({"Ninf", "hits", "mean err"});
    for (std::size_t n_inf : {128u, 192u, 256u, 320u}) {
      const auto seg =
          run_pipeline(n_inf, base_params.stride, 0, base_params.threshold);
      const auto score = oracle_hits(seg.co_starts, truth, n_inf, co_len);
      table.add_row({std::to_string(n_inf),
                     format_percent(score.hit_rate(), 1),
                     format_fixed(score.mean_abs_error, 1)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  // --- (d) fine alignment: the full trained pipeline --------------------------
  {
    std::printf("--- (d) full pipeline: fine alignment on vs off ---\n");
    TextTable table({"fine align", "hits", "mean err (samples)"});
    {
      const auto located = locator.locate(eval.samples);
      const auto s = core::score_hits(located, truth, tol);
      table.add_row({"on (trained calibration)",
                     format_percent(s.hit_rate(), 1),
                     format_fixed(s.mean_abs_error, 1)});
    }
    {
      const auto seg = run_pipeline(base_params.n_inf, base_params.stride, 0,
                                    base_params.threshold);
      const auto s = oracle_hits(seg.co_starts, truth, tol, co_len);
      table.add_row({"off (oracle offset only)",
                     format_percent(s.hit_rate(), 1),
                     format_fixed(s.mean_abs_error, 1)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf("total: %.0fs\n", total.seconds());
  return 0;
}
