// Overload & fault-tolerance benchmark for the serving plane: what the
// Engine does when offered more work than it can absorb, and what it does
// when the work itself misbehaves.
//
// Four sections, all emitted into BENCH_overload.json and gated by
// bench/thresholds/overload.json in the chaos CI job:
//
//   baseline   unloaded per-job latency (sequential submits) — the yardstick
//              every overload row's p99 is measured against.
//   rows       an offered-load burst far beyond capacity against each
//              non-blocking admission policy (kRejectWhenFull,
//              kShedByDeadline). The contract under overload: drop excess
//              load with typed errors, keep the p99 of ACCEPTED jobs within
//              a small multiple of the unloaded baseline (bounded queueing,
//              never collapse), and return bit-identical detections for
//              every job that was accepted.
//   faults     injected worker crashes (runtime::FaultInjector) behind
//              api::with_retry: every request still succeeds, every result
//              still matches the offline reference, and the retries
//              telemetry reconciles exactly with the injected fault count.
//   watchdog   an injected 600 ms stall against a warmed p99 baseline must
//              raise watchdog_trips — slow-vs-stuck detection end to end.
//
// SCALOCATE_SCALE scales the workload (0.25 = CI smoke run).
#include <cstdio>
#include <future>

#include "api/scalocate.hpp"
#include "bench_common.hpp"
#include "obs/registry.hpp"
#include "runtime/fault_injector.hpp"

using namespace scalocate;

namespace {

const char* policy_name(api::AdmissionPolicy p) {
  switch (p) {
    case api::AdmissionPolicy::kBlock: return "block";
    case api::AdmissionPolicy::kRejectWhenFull: return "reject_when_full";
    case api::AdmissionPolicy::kShedByDeadline: return "shed_by_deadline";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("== bench_overload: admission control, shedding & faults ==\n");
  std::printf("scale=%.2f  hardware threads=%u\n\n", bench::scale(),
              std::thread::hardware_concurrency());
  runtime::FaultInjector::instance().reset();

  bench::Timer setup_timer;
  auto setup = bench::train_locator(crypto::CipherId::kCamellia128,
                                    trace::RandomDelayConfig::kRd2, 0xfade,
                                    384, 100000);
  const double train_seconds = setup_timer.seconds();
  std::printf("trained in %.1f s (test accuracy %.3f)\n", train_seconds,
              setup.report.test_confusion.accuracy());

  const std::size_t n_traces = 3;
  const std::size_t n_cos = bench::scaled(8);
  std::vector<trace::Trace> traces;
  traces.reserve(n_traces);
  for (std::size_t i = 0; i < n_traces; ++i)
    traces.push_back(
        trace::acquire_eval_trace(setup.scenario, n_cos, setup.key, i == 1));
  std::vector<std::vector<std::size_t>> reference;
  reference.reserve(n_traces);
  for (const auto& t : traces)
    reference.push_back(setup.locator.locate(t.samples));

  obs::JsonWriter json;
  json.begin_object();
  json.kv("bench", "overload");
  json.kv("scale", bench::scale());
  json.kv("epochs", bench::bench_epochs());
  json.kv("train_seconds", train_seconds);
  json.kv("accuracy", setup.report.test_confusion.accuracy());

  // -------------------------------------------------------------------------
  // Baseline: sequential submits, no contention — the unloaded latency.
  // -------------------------------------------------------------------------
  const std::size_t baseline_jobs = bench::scaled(8);
  double baseline_p99_s = 0.0;
  {
    api::Engine engine({.workers = 2});
    engine.attach_model(setup.locator);
    auto session = engine.open_session();
    std::vector<double> latencies;
    latencies.reserve(baseline_jobs);
    bench::Timer wall;
    for (std::size_t j = 0; j < baseline_jobs; ++j) {
      auto r = session.submit_timed(traces[j % n_traces].samples).get();
      latencies.push_back(r.latency_seconds);
      if (r.starts != reference[j % n_traces]) {
        std::fprintf(stderr, "baseline job %zu mismatched the reference\n", j);
        return 1;
      }
    }
    const auto s = bench::summarize_latencies(latencies, wall.seconds());
    baseline_p99_s = s.p99_ms / 1e3;
    std::printf("\nbaseline (unloaded): p50 %.1f ms  p99 %.1f ms over %zu jobs\n",
                s.p50_ms, s.p99_ms, baseline_jobs);
    json.key("baseline");
    bench::summary_to_json(json, s);
  }

  // -------------------------------------------------------------------------
  // Overload rows: a burst of `offered` jobs against 2 workers and an
  // in-flight bound of 4 (max_queue_depth counts running + queued, so this
  // is 2 running + 2 sheddable queue slots). Everything past capacity must
  // be dropped with a typed error at admission time (reject) or eviction
  // time (shed/deadline); the accepted jobs' p99 stays within a small
  // multiple of baseline because nothing ever waits behind more than one
  // job per worker.
  // -------------------------------------------------------------------------
  const std::size_t offered = bench::scaled(24);
  json.kv("offered_per_row", offered);
  json.key("rows").begin_array();
  std::printf("\n%-18s %8s %9s %9s %6s %9s %10s %10s\n", "policy", "offered",
              "accepted", "rejected", "shed", "deadline", "p99 ms", "p99/base");
  double p99_ratio_max = 0.0;
  std::uint64_t dropped_total = 0;
  for (const api::AdmissionPolicy policy :
       {api::AdmissionPolicy::kRejectWhenFull,
        api::AdmissionPolicy::kShedByDeadline}) {
    obs::Registry registry;
    api::EngineConfig cfg;
    cfg.workers = 2;
    cfg.max_queue_depth = 4;
    cfg.admission = policy;
    cfg.registry = &registry;
    api::Engine engine(cfg);
    engine.attach_model(setup.locator);
    auto session = engine.open_session();

    // Deadlines only matter to the shed policy (its eviction order); give
    // each job a generous, staggered one so accepted jobs always finish in
    // time and the drop counts stay attributable to admission, not luck.
    const auto now = std::chrono::steady_clock::now();
    const auto slot = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double>(std::max(baseline_p99_s, 1e-3)));

    struct Pending {
      std::future<api::Session::TimedResult> future;
      std::size_t trace;
    };
    std::vector<Pending> pending;
    pending.reserve(offered);
    std::size_t rejected_sync = 0;
    bench::Timer wall;
    for (std::size_t j = 0; j < offered; ++j) {
      api::SubmitOptions options;
      if (policy == api::AdmissionPolicy::kShedByDeadline)
        options.deadline = now + slot * (8 + j);
      try {
        pending.push_back(
            {session.submit_timed(traces[j % n_traces].samples, options),
             j % n_traces});
      } catch (const api::Overloaded&) {
        ++rejected_sync;
      }
    }
    std::vector<double> accepted_latencies;
    std::size_t shed = 0, deadline_exceeded = 0, mismatches = 0;
    for (auto& p : pending) {
      try {
        auto r = p.future.get();
        accepted_latencies.push_back(r.latency_seconds);
        if (r.starts != reference[p.trace]) ++mismatches;
      } catch (const api::Overloaded&) {
        ++shed;
      } catch (const api::DeadlineExceeded&) {
        ++deadline_exceeded;
      }
    }
    const double elapsed = wall.seconds();
    // Resolved futures prove the results; drain() waits for the worker-side
    // accounting so the embedded metrics snapshot reconciles exactly.
    session.drain();
    const auto s = bench::summarize_latencies(accepted_latencies, elapsed);
    const double ratio =
        baseline_p99_s > 0.0 ? (s.p99_ms / 1e3) / baseline_p99_s : 0.0;
    p99_ratio_max = std::max(p99_ratio_max, ratio);
    dropped_total += rejected_sync + shed + deadline_exceeded;

    std::printf("%-18s %8zu %9zu %9zu %6zu %9zu %10.1f %9.2fx", policy_name(policy),
                offered, accepted_latencies.size(), rejected_sync, shed,
                deadline_exceeded, s.p99_ms, ratio);
    if (mismatches > 0) std::printf("  [%zu MISMATCHED]", mismatches);
    std::printf("\n");

    json.begin_object();
    json.kv("policy", policy_name(policy));
    json.kv("offered", offered);
    json.kv("accepted", accepted_latencies.size());
    json.kv("rejected_sync", rejected_sync);
    json.kv("shed", shed);
    json.kv("deadline_exceeded", deadline_exceeded);
    json.kv("mismatches", mismatches);
    json.kv("p99_ratio", ratio);
    json.kv("goodput_per_s", s.throughput_per_s);
    json.key("latency");
    bench::summary_to_json(json, s);
    json.key("metrics");
    registry.render_json_into(json);
    json.end_object();
  }
  json.end_array();
  json.kv("p99_ratio_max", p99_ratio_max);
  json.kv("dropped_total", dropped_total);

  // -------------------------------------------------------------------------
  // Faults: every worker throw is injected, typed, retried, and accounted
  // for — no accepted request is lost and none comes back wrong.
  // -------------------------------------------------------------------------
  {
    auto& injector = runtime::FaultInjector::instance();
    injector.reset();
    obs::Registry registry;
    api::Engine engine({.workers = 2, .registry = &registry});
    engine.attach_model(setup.locator);
    auto session = engine.open_session();

    const std::size_t fault_jobs = bench::scaled(8);
    runtime::FaultSpec spec;
    spec.action = runtime::FaultSpec::Action::kThrow;
    spec.times = 3;
    injector.arm("engine.camellia.job", spec);

    api::RetryConfig retry;
    retry.max_attempts = 5;
    retry.initial_backoff = std::chrono::milliseconds(1);
    retry.jitter_seed = 42;
    retry.registry = &registry;

    std::size_t failed = 0, parity_failures = 0;
    for (std::size_t j = 0; j < fault_jobs; ++j) {
      try {
        const auto starts = api::with_retry(
            [&] { return session.submit_view(traces[j % n_traces].samples).get(); },
            retry);
        if (starts != reference[j % n_traces]) ++parity_failures;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "fault job %zu failed: %s\n", j, e.what());
        ++failed;
      }
    }
    session.drain();
    const std::uint64_t injected = injector.injected("engine.camellia.job");
    const std::uint64_t retries = registry.counter("api.retries").value();
    injector.reset();

    std::printf(
        "\nfaults: %zu jobs, %llu injected throws, %llu retries, "
        "%zu failed, %zu parity failures\n",
        fault_jobs, static_cast<unsigned long long>(injected),
        static_cast<unsigned long long>(retries), failed, parity_failures);

    json.key("faults").begin_object();
    json.kv("jobs", fault_jobs);
    json.kv("injected", injected);
    json.kv("retries", retries);
    json.kv("retries_minus_injected",
            static_cast<double>(retries) - static_cast<double>(injected));
    json.kv("failed", failed);
    json.kv("parity_failures", parity_failures);
    json.key("metrics");
    registry.render_json_into(json);
    json.end_object();
  }

  // -------------------------------------------------------------------------
  // Watchdog: warm the rolling p99 with small fast jobs, then stall one.
  // -------------------------------------------------------------------------
  {
    auto& injector = runtime::FaultInjector::instance();
    obs::Registry registry;
    api::EngineConfig cfg;
    cfg.workers = 2;
    cfg.watchdog_p99_multiple = 4.0;
    cfg.watchdog_min_samples = 12;
    cfg.registry = &registry;
    api::Engine engine(cfg);
    engine.attach_model(setup.locator);
    auto session = engine.open_session();

    // Fixed 16 warmup jobs (not scaled: must exceed watchdog_min_samples
    // even at smoke scale) on a small slice so the p99 baseline is tight.
    const std::span<const float> probe(traces.front().samples);
    const std::size_t slice = std::min<std::size_t>(16384, probe.size());
    for (std::size_t j = 0; j < 16; ++j)
      session.submit_view(probe.subspan(0, slice)).get();

    runtime::FaultSpec spec;
    spec.action = runtime::FaultSpec::Action::kStall;
    spec.stall = std::chrono::milliseconds(600);
    spec.times = 1;
    injector.arm("engine.camellia.job", spec);
    session.submit_view(probe.subspan(0, slice)).get();
    session.drain();
    injector.reset();

    const std::uint64_t trips =
        registry.counter("engine.camellia.watchdog_trips").value();
    std::printf("watchdog: %llu trip(s) after a 600 ms injected stall\n",
                static_cast<unsigned long long>(trips));

    json.key("watchdog").begin_object();
    json.kv("warmup_jobs", static_cast<std::uint64_t>(16));
    json.kv("stall_ms", static_cast<std::uint64_t>(600));
    json.kv("trips", trips);
    json.key("metrics");
    registry.render_json_into(json);
    json.end_object();
  }

  json.end_object();
  bench::write_bench_json("overload", json);
  return 0;
}
