// Robustness matrix: every ScenarioSuite capture condition crossed with two
// cipher models served side by side from one multi-model Engine.
//
// Each (cipher, scenario) cell acquires a hostile evaluation capture and
// locates it twice through the same Session — the whole-trace path (the
// offline pipeline) and the chunked Stream path — then scores the
// detections against ground truth: hit rate, located/true, mean |start
// error| over hits, and false alarms. The two detection lists must be
// bit-identical in every cell, preemption-split and truncated-tail traces
// included; any mismatch fails the bench.
//
// The mixed-cipher rows exercise the Engine registry for real: the capture
// interleaves both benched ciphers, each row locates it with its own
// cipher's model, and the partner's COs are NOT counted as truth — a
// detection on them shows up in the FP column as cross-cipher confusion.
//
// Env:
//   SCALOCATE_SCALE      workload scale (COs per capture, training sizes)
//   SCALOCATE_EPOCHS     training epochs (default 10)
//   SCALOCATE_HIT_FLOOR  minimum acceptable AGGREGATE hit rate (total hits
//                        over total true COs across every cell), as a
//                        fraction (e.g. 0.40). Unset or 0: report only.
//                        Aggregate, not per-cell min: single cells sit on
//                        3-CO captures at smoke scale, where one borderline
//                        CO flips a cell between 0% and 33%.
//   SCALOCATE_MERGE_GAP  overrides the benched merge_gap_windows (ablation
//                        knob; default 6).
//
// Exit status: 1 on any streaming/offline parity mismatch, 2 when the
// aggregate hit rate falls below SCALOCATE_HIT_FLOOR.
//
// Machine-readable twin: the full matrix (per-cell hit rates, aggregate,
// parity) is written to BENCH_robustness.json BEFORE the floor/parity exit
// checks run, so a failing run still leaves the snapshot for CI triage —
// the robustness-smoke job gates on the JSON's aggregate_hit_rate and
// parity_failures fields via bench_check rather than parsing this stdout.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/scalocate.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "obs/registry.hpp"

using namespace scalocate;

namespace {

double hit_floor() {
  if (const char* s = std::getenv("SCALOCATE_HIT_FLOOR")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 0.0;
}

/// Streams the capture in `chunk`-sized pieces through a Session stream and
/// returns the detection starts in emission order.
std::vector<std::size_t> stream_starts(const api::Session& session,
                                       std::span<const float> samples,
                                       std::size_t chunk) {
  auto stream = session.open_stream();
  std::vector<std::size_t> starts;
  for (std::size_t off = 0; off < samples.size(); off += chunk) {
    const std::size_t n = std::min(chunk, samples.size() - off);
    for (const auto& d : stream.feed(samples.subspan(off, n)))
      starts.push_back(d.start);
  }
  for (const auto& d : stream.finish()) starts.push_back(d.start);
  return starts;
}

}  // namespace

int main() {
  std::printf("=== Robustness matrix: countermeasure scenarios x ciphers ===\n");
  const std::size_t n_cos = bench::scaled(12);
  const double floor = hit_floor();
  std::printf("(%zu COs per capture, tolerance = Ninf samples, floor %s)\n\n",
              n_cos, floor > 0.0 ? format_percent(floor, 0).c_str() : "off");

  // AES + Camellia: the two ciphers whose models train to usable detectors
  // at the CI smoke scale (Clefia/Simon need the full-scale budget; see
  // bench_hits for the all-cipher sweep on the benign scenarios).
  const crypto::CipherId ciphers[] = {crypto::CipherId::kAes128,
                                      crypto::CipherId::kCamellia128};

  // One trained model per cipher, with plateau-split merging on. The gap
  // must stay below the score plateau's own width (~(n_inf + CO/12)/stride
  // windows — see resolve_median_k): the SCALOCATE_MERGE_GAP ablation shows
  // gaps wider than the plateau start suppressing genuine rising edges
  // whose preceding low run is a real inter-CO separation that frayed.
  // (otsu_clip_percentile is NOT set here: the matrix runs on the fixed
  // linear-margin threshold that streaming parity requires, so the clipped
  // automatic threshold never executes in this bench; it is unit-tested in
  // test_core_segmentation.)
  // RD-2 rather than RD-4: the random-delay axis is bench_hits' job, and
  // RD-4 only trains to a usable detector at full workload scale — the
  // scenario axis measured here needs a model that detects reliably at the
  // CI smoke scale too, or every cell would just measure undertraining.
  std::vector<bench::TrainedSetup> setups;
  for (const auto id : ciphers) {
    bench::Timer t;
    setups.push_back(bench::train_locator(
        id, trace::RandomDelayConfig::kRd2,
        0x9b0'0000 + 16 * static_cast<std::uint64_t>(id), 512, 150000,
        [](core::LocatorConfig& lc) {
          lc.params.merge_gap_windows = 6;
          if (const char* s = std::getenv("SCALOCATE_MERGE_GAP"))
            lc.params.merge_gap_windows =
                static_cast<std::size_t>(std::atoi(s));
        }));
    const auto& loc = setups.back().locator;
    std::printf("trained %s: accuracy %.3f, merge gap %zu windows, "
                "expected CO %zu samples (%.0fs)\n",
                crypto::cipher_display_name(id).c_str(),
                setups.back().report.test_confusion.accuracy(),
                loc.config().params.merge_gap_windows,
                loc.segmenter_config().expected_co_length, t.seconds());
  }
  std::printf("\n");

  // One Engine serves both models; every cell goes through its Session.
  // The registry captures per-model serving metrics across the whole
  // matrix; its snapshot is embedded in BENCH_robustness.json.
  obs::Registry registry;
  api::Engine engine({.workers = 2, .registry = &registry});
  for (const auto& s : setups) engine.attach_model(s.locator);

  obs::JsonWriter json;
  json.begin_object();
  json.kv("bench", "robustness");
  json.kv("scale", bench::scale());
  json.kv("epochs", bench::bench_epochs());
  json.kv("cos_per_capture", n_cos);
  json.kv("floor", floor);
  json.key("cells").begin_array();

  TextTable table({"Cipher", "Scenario", "Hits", "Hit rate",
                   "MeanErr(samples)", "FalseAlarms", "Stream parity"});
  double min_hit_rate = 1.0;
  std::size_t total_hits = 0;
  std::size_t total_true = 0;
  std::size_t parity_failures = 0;
  std::size_t rows = 0;

  bench::Timer total;
  for (std::size_t ci = 0; ci < std::size(ciphers); ++ci) {
    const auto& setup = setups[ci];
    auto session = engine.open_session(ciphers[ci]);
    const std::size_t tol = setup.locator.config().params.n_inf;

    for (const auto& scenario : trace::ScenarioSuite::all()) {
      trace::ScenarioConfig sc = setup.scenario;
      sc.seed ^= 0x5ce'0000 + 256 * rows;
      // The mixed capture interleaves the two benched ciphers, so each
      // row's partner model genuinely exists in the engine registry.
      sc.mixed_cipher = ciphers[1 - ci];

      const auto cap =
          trace::ScenarioSuite::acquire(scenario, sc, n_cos, setup.key);
      const auto offline = session.submit_view(cap.trace.samples).get();
      const auto streamed = stream_starts(session, cap.trace.samples, 2048);
      const bool parity = streamed == offline;
      parity_failures += !parity;

      const auto truth = cap.starts_of(ciphers[ci]);
      const auto score = core::score_hits(offline, truth, tol);
      min_hit_rate = std::min(min_hit_rate, score.hit_rate());
      total_hits += score.hits;
      total_true += score.true_cos;
      ++rows;

      table.add_row({crypto::cipher_display_name(ciphers[ci]), scenario.name,
                     std::to_string(score.hits) + "/" +
                         std::to_string(score.true_cos),
                     format_percent(score.hit_rate(), 1),
                     format_fixed(score.mean_abs_error, 1),
                     std::to_string(score.false_alarms),
                     parity ? "EXACT" : "MISMATCH"});

      json.begin_object();
      json.kv("cipher", api::metric_model_name(ciphers[ci]));
      json.kv("scenario", scenario.name);
      json.kv("hits", score.hits);
      json.kv("true_cos", score.true_cos);
      json.kv("hit_rate", score.hit_rate());
      json.kv("mean_abs_error", score.mean_abs_error);
      json.kv("false_alarms", score.false_alarms);
      json.kv("stream_parity", parity);
      json.end_object();
    }
    if (ci + 1 < std::size(ciphers)) table.add_separator();
  }

  const double aggregate =
      total_true > 0
          ? static_cast<double>(total_hits) / static_cast<double>(total_true)
          : 0.0;
  std::printf("%s\n", table.render().c_str());
  std::printf("aggregate hit rate %s (%zu/%zu), min cell %s, streaming "
              "parity %zu/%zu, total %.0fs\n",
              format_percent(aggregate, 1).c_str(), total_hits, total_true,
              format_percent(min_hit_rate, 1).c_str(),
              rows - parity_failures, rows, total.seconds());

  json.end_array();
  json.kv("aggregate_hit_rate", aggregate);
  json.kv("total_hits", total_hits);
  json.kv("total_true", total_true);
  json.kv("min_cell_hit_rate", min_hit_rate);
  json.kv("parity_failures", parity_failures);
  json.kv("rows", rows);
  json.kv("total_seconds", total.seconds());
  json.key("metrics");
  registry.render_json_into(json);
  json.end_object();
  bench::write_bench_json("robustness", json);

  if (parity_failures > 0) {
    std::printf("FAIL: streaming detections diverged from offline locate\n");
    return 1;
  }
  if (floor > 0.0 && aggregate < floor) {
    std::printf("FAIL: aggregate hit rate below floor %s\n",
                format_percent(floor, 1).c_str());
    return 2;
  }
  return 0;
}
