// Engineering micro-benchmarks (google-benchmark): throughput of the hot
// paths -- the GEMM/conv kernel backend (blocked vs naive reference), full
// CNN window scoring, CPA trace accumulation, the SoC simulator, and the
// segmentation DSP blocks. The conv/GEMM cases feed the README
// "Performance" table.
//
// Besides the console report, every run is collected into BENCH_micro.json
// (custom main below): per-case times plus a flat "gflops" map keyed by
// case name — the fields the perf-regression CI job gates on — and, when
// the library was built with SCALOCATE_PROFILE, the global registry's
// kernel FLOP counters and per-shape timing histograms.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/signal.hpp"
#include "core/model.hpp"
#include "nn/conv1d.hpp"
#include "nn/init.hpp"
#include "nn/kernels/gemm.hpp"
#include "nn/kernels/parallel.hpp"
#include "nn/kernels/reference.hpp"
#include "obs/registry.hpp"
#include "sca/cpa.hpp"
#include "trace/scenario.hpp"
#include "trace/soc_simulator.hpp"

using namespace scalocate;

namespace {

nn::Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  nn::Tensor t(std::move(shape));
  Rng rng(seed);
  for (float& v : t.flat()) v = static_cast<float>(rng.normal());
  return t;
}

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  std::vector<float> v(n);
  Rng rng(seed);
  for (float& x : v) x = static_cast<float>(rng.normal());
  return v;
}

// --- GEMM kernel: blocked backend vs naive reference (GFLOP/s) -------------
// Sizes mirror the im2col GEMMs of the paper model at Ninf = 192:
// M = Cout, N = out_len, K = Cin*K.

void BM_GemmBlocked(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto k = static_cast<std::size_t>(state.range(2));
  const auto a = random_vec(m * k, 1);
  const auto b = random_vec(k * n, 2);
  std::vector<float> c(m * n);
  nn::kernels::GemmScratch scratch;
  for (auto _ : state) {
    nn::kernels::sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n,
                       0.0f, c.data(), n, scratch);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * static_cast<double>(m) *
          static_cast<double>(n) * static_cast<double>(k) * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmBlocked)
    ->Args({16, 192, 64})     // entry conv (Cin=1, K=64)
    ->Args({32, 192, 1024})   // widening conv (Cin=16, K=64)
    ->Args({256, 256, 256});  // square reference point

void BM_GemmNaive(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto k = static_cast<std::size_t>(state.range(2));
  const auto a = random_vec(m * k, 1);
  const auto b = random_vec(k * n, 2);
  std::vector<float> c(m * n);
  for (auto _ : state) {
    nn::kernels::sgemm_naive(false, false, m, n, k, 1.0f, a.data(), k,
                             b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * static_cast<double>(m) *
          static_cast<double>(n) * static_cast<double>(k) * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmNaive)->Args({32, 192, 1024})->Args({256, 256, 256});

// --- Conv1d forward: im2col+GEMM layer vs preserved naive reference --------
// Paper-size model convolutions (K = 64, Ninf = 192, channels 1->16->32).

struct PaperConv {
  std::size_t cin, cout;
};
constexpr PaperConv kPaperConvs[] = {{1, 16}, {16, 16}, {16, 32}, {32, 32}};

void BM_Conv1dForwardPaper(benchmark::State& state) {
  const PaperConv pc = kPaperConvs[state.range(0)];
  const std::size_t kernel = 64, n = 192, batch = 64;
  nn::Conv1d conv(pc.cin, pc.cout, kernel);
  Rng rng(1);
  nn::he_normal_init(conv.weight().value, rng);
  conv.set_training(false);
  const auto x = random_tensor({batch, pc.cin, n}, 2);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x));
  const double flops = 2.0 * static_cast<double>(batch) *
                       static_cast<double>(pc.cout) * static_cast<double>(n) *
                       static_cast<double>(pc.cin) * static_cast<double>(kernel);
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * flops * 1e-9,
      benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch * n));
}
BENCHMARK(BM_Conv1dForwardPaper)->DenseRange(0, 3);

void BM_Conv1dForwardNaivePaper(benchmark::State& state) {
  const PaperConv pc = kPaperConvs[state.range(0)];
  const std::size_t kernel = 64, n = 192, batch = 64;
  nn::Conv1d conv(pc.cin, pc.cout, kernel);  // same padding resolution
  Rng rng(1);
  nn::he_normal_init(conv.weight().value, rng);
  const auto x = random_tensor({batch, pc.cin, n}, 2);
  const std::size_t out_len = conv.output_length(n);
  std::vector<float> out(batch * pc.cout * out_len);
  for (auto _ : state) {
    nn::kernels::conv1d_forward_naive(
        x.data(), batch, pc.cin, n, conv.weight().value.data(),
        conv.bias().value.data(), pc.cout, kernel, 1, conv.pad_left(), out_len,
        out.data());
    benchmark::DoNotOptimize(out.data());
  }
  const double flops = 2.0 * static_cast<double>(batch) *
                       static_cast<double>(pc.cout) * static_cast<double>(n) *
                       static_cast<double>(pc.cin) * static_cast<double>(kernel);
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * flops * 1e-9,
      benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch * n));
}
BENCHMARK(BM_Conv1dForwardNaivePaper)->DenseRange(0, 3);

// The whole conv stack of the paper model (1->16, 2x 16->16, 16->32,
// 2x 32->32 across the residual blocks collapse to these four shapes with
// multiplicities 1/2/1/2): one number for the model-level conv speedup.
void BM_Conv1dForwardPaperStack(benchmark::State& state) {
  const bool use_gemm = state.range(0) != 0;
  const std::size_t kernel = 64, n = 192, batch = 64;
  const std::size_t mult[] = {1, 2, 1, 2};
  std::vector<std::unique_ptr<nn::Conv1d>> convs;
  std::vector<nn::Tensor> xs;
  double flops = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    const PaperConv pc = kPaperConvs[i];
    auto conv = std::make_unique<nn::Conv1d>(pc.cin, pc.cout, kernel);
    Rng rng(i + 1);
    nn::he_normal_init(conv->weight().value, rng);
    conv->set_training(false);
    convs.push_back(std::move(conv));
    xs.push_back(random_tensor({batch, pc.cin, n}, i + 10));
    flops += static_cast<double>(mult[i]) * 2.0 * static_cast<double>(batch) *
             static_cast<double>(pc.cout) * static_cast<double>(n) *
             static_cast<double>(pc.cin) * static_cast<double>(kernel);
  }
  const std::size_t out_len = convs[0]->output_length(n);
  std::vector<float> out(batch * 32 * out_len);
  for (auto _ : state) {
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t rep = 0; rep < mult[i]; ++rep) {
        if (use_gemm) {
          benchmark::DoNotOptimize(convs[i]->forward(xs[i]));
        } else {
          const PaperConv pc = kPaperConvs[i];
          nn::kernels::conv1d_forward_naive(
              xs[i].data(), batch, pc.cin, n, convs[i]->weight().value.data(),
              convs[i]->bias().value.data(), pc.cout, kernel, 1,
              convs[i]->pad_left(), out_len, out.data());
          benchmark::DoNotOptimize(out.data());
        }
      }
    }
  }
  state.SetLabel(use_gemm ? "kernel backend" : "naive");
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * flops * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Conv1dForwardPaperStack)->Arg(1)->Arg(0);

// --- Intra-op scaling curve ------------------------------------------------
// The same two workloads the README quotes — the 256-cube GEMM and the
// paper conv stack — at an intra-op budget of 1/2/4/8 threads. main()
// folds these into the snapshot's "scaling" section (absolute GFLOP/s plus
// tN_speedup ratios vs the 1-thread run) that the perf CI job gates on.
// Results are bit-identical across the curve; only the wall clock moves.

void BM_GemmBlockedThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  nn::kernels::IntraOpGuard intra(threads);
  const std::size_t m = 256, n = 256, k = 256;
  const auto a = random_vec(m * k, 1);
  const auto b = random_vec(k * n, 2);
  std::vector<float> c(m * n);
  nn::kernels::GemmScratch scratch;
  for (auto _ : state) {
    nn::kernels::sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n,
                       0.0f, c.data(), n, scratch);
    benchmark::DoNotOptimize(c.data());
  }
  // Raw per-iteration FLOPs, not a kIsRate counter: rate counters divide
  // by the bench thread's CPU time, which excludes the compute-pool
  // workers and would report fake speedups. main() derives GFLOP/s from
  // the wall-clock per-iteration time instead.
  state.counters["flops"] =
      benchmark::Counter(2.0 * static_cast<double>(m) *
                         static_cast<double>(n) * static_cast<double>(k));
}
BENCHMARK(BM_GemmBlockedThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_ConvStackThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  nn::kernels::IntraOpGuard intra(threads);
  const std::size_t kernel = 64, n = 192, batch = 64;
  const std::size_t mult[] = {1, 2, 1, 2};
  std::vector<std::unique_ptr<nn::Conv1d>> convs;
  std::vector<nn::Tensor> xs;
  double flops = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    const PaperConv pc = kPaperConvs[i];
    auto conv = std::make_unique<nn::Conv1d>(pc.cin, pc.cout, kernel);
    Rng rng(i + 1);
    nn::he_normal_init(conv->weight().value, rng);
    conv->set_training(false);
    convs.push_back(std::move(conv));
    xs.push_back(random_tensor({batch, pc.cin, n}, i + 10));
    flops += static_cast<double>(mult[i]) * 2.0 * static_cast<double>(batch) *
             static_cast<double>(pc.cout) * static_cast<double>(n) *
             static_cast<double>(pc.cin) * static_cast<double>(kernel);
  }
  for (auto _ : state) {
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t rep = 0; rep < mult[i]; ++rep)
        benchmark::DoNotOptimize(convs[i]->forward(xs[i]));
  }
  state.counters["flops"] = benchmark::Counter(flops);  // see above
}
BENCHMARK(BM_ConvStackThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_Conv1dForward(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  nn::Conv1d conv(channels, channels, 16);
  Rng rng(1);
  nn::he_normal_init(conv.weight().value, rng);
  conv.set_training(false);
  const auto x = random_tensor({8, channels, 256}, 2);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x));
  state.SetItemsProcessed(state.iterations() * 8 * 256);
}
BENCHMARK(BM_Conv1dForward)->Arg(16)->Arg(32);

void BM_PaperCnnWindowScore(benchmark::State& state) {
  auto net = core::build_paper_cnn(core::CnnConfig::scaled());
  net->set_training(false);
  const auto x = random_tensor({64, 1, 256}, 3);
  for (auto _ : state) benchmark::DoNotOptimize(net->forward(x));
  state.SetItemsProcessed(state.iterations() * 64);  // windows per second
}
BENCHMARK(BM_PaperCnnWindowScore);

void BM_CpaAddTrace(benchmark::State& state) {
  sca::CpaConfig cfg;
  cfg.segment_length = 2048;
  cfg.aggregate_bin = 32;
  sca::CpaAttack cpa(cfg);
  Rng rng(4);
  std::vector<float> segment(2048);
  for (auto& v : segment) v = static_cast<float>(rng.normal());
  crypto::Block16 pt{};
  for (auto _ : state) {
    rng.fill_bytes(pt.data(), 16);
    cpa.add_trace(segment, pt);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CpaAddTrace);

void BM_SimulatorAesTrace(benchmark::State& state) {
  trace::SocConfig cfg;
  cfg.random_delay = trace::RandomDelayConfig::kRd4;
  trace::SocSimulator sim(cfg);
  auto cipher = crypto::make_cipher(crypto::CipherId::kAes128);
  cipher->set_key(crypto::Key16{});
  std::size_t samples = 0;
  for (auto _ : state) {
    trace::Trace t;
    sim.run_cipher(*cipher, crypto::Block16{}, t);
    samples += t.size();
    benchmark::DoNotOptimize(t.samples.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(samples));
}
BENCHMARK(BM_SimulatorAesTrace);

void BM_MedianFilter(benchmark::State& state) {
  Rng rng(6);
  std::vector<float> xs(100000);
  for (auto& v : xs) v = rng.bernoulli(0.1) ? 1.f : -1.f;
  for (auto _ : state)
    benchmark::DoNotOptimize(signal::median_filter(xs, 7));
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_MedianFilter);

void BM_NormalizedCrossCorrelation(benchmark::State& state) {
  Rng rng(7);
  std::vector<float> sig(50000), ker(512);
  for (auto& v : sig) v = static_cast<float>(rng.normal());
  for (auto& v : ker) v = static_cast<float>(rng.normal());
  for (auto _ : state)
    benchmark::DoNotOptimize(signal::normalized_cross_correlate(sig, ker));
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_NormalizedCrossCorrelation);

// --- BENCH_micro.json emission ---------------------------------------------

/// ConsoleReporter that also collects every finished run, so the snapshot
/// sees exactly what was printed (works without --benchmark_out, which the
/// stock display/file reporter split requires).
class SnapshotReporter : public benchmark::ConsoleReporter {
 public:
  struct Case {
    std::string name;
    std::int64_t iterations = 0;
    double real_time_ns = 0.0;  ///< adjusted per-iteration real time
    double cpu_time_ns = 0.0;
    std::vector<std::pair<std::string, double>> counters;  ///< e.g. GFLOP/s
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Case c;
      c.name = run.benchmark_name();
      c.iterations = run.iterations;
      c.real_time_ns = run.GetAdjustedRealTime();
      c.cpu_time_ns = run.GetAdjustedCPUTime();
      for (const auto& [name, counter] : run.counters)
        c.counters.emplace_back(name, counter.value);
      cases.push_back(std::move(c));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  std::vector<Case> cases;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  SnapshotReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  obs::JsonWriter json;
  json.begin_object();
  json.kv("bench", "micro");
  json.kv("scale", bench::scale());
  json.key("cases").begin_array();
  for (const auto& c : reporter.cases) {
    json.begin_object();
    json.kv("name", c.name);
    json.kv("iterations", static_cast<std::int64_t>(c.iterations));
    json.kv("real_time_ns", c.real_time_ns);
    json.kv("cpu_time_ns", c.cpu_time_ns);
    json.key("counters").begin_object();
    for (const auto& [name, value] : c.counters) json.kv(name, value);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  // Flat name -> GFLOP/s map: the stable paths the CI thresholds reference
  // (case names contain '/' but never '.', so dotted-path lookup works).
  json.key("gflops").begin_object();
  for (const auto& c : reporter.cases)
    for (const auto& [name, value] : c.counters)
      if (name == "GFLOP/s") json.kv(c.name, value);
  json.end_object();
  // Intra-op scaling curves: wall-clock GFLOP/s of the *Threads benches at
  // each thread budget, plus speedup ratios vs their 1-thread run. The
  // perf CI gates on conv_stack.t2_speedup; a 1-core runner reports ~1.0
  // here, so calibrate thresholds for the machine that enforces them.
  {
    const auto wall_gflops = [&](const std::string& name) {
      for (const auto& c : reporter.cases) {
        if (c.name != name || c.real_time_ns <= 0.0) continue;
        for (const auto& [cname, value] : c.counters)
          if (cname == "flops") return value / c.real_time_ns;
      }
      return 0.0;
    };
    json.key("scaling").begin_object();
    const std::pair<const char*, const char*> curves[] = {
        {"gemm256", "BM_GemmBlockedThreads"},
        {"conv_stack", "BM_ConvStackThreads"}};
    for (const auto& [key, bench] : curves) {
      json.key(key).begin_object();
      const double t1 =
          wall_gflops(std::string(bench) + "/1/real_time");
      for (const int t : {1, 2, 4, 8}) {
        const double g = wall_gflops(std::string(bench) + "/" +
                                     std::to_string(t) + "/real_time");
        // Built with += rather than "t" + to_string(): the temporary-chain
        // form trips gcc 12's spurious -Wrestrict on the inlined append.
        std::string tkey("t");
        tkey += std::to_string(t);
        json.kv(tkey, g);
        if (t > 1) json.kv(tkey + "_speedup", t1 > 0.0 ? g / t1 : 0.0);
      }
      json.end_object();
    }
    json.end_object();
  }
  // Kernel-layer telemetry (counters advance only under SCALOCATE_PROFILE;
  // otherwise this snapshot is empty).
  json.key("metrics");
  obs::Registry::global().render_json_into(json);
  json.end_object();
  bench::write_bench_json("micro", json);

  benchmark::Shutdown();
  return 0;
}
