// Engineering micro-benchmarks (google-benchmark): throughput of the hot
// paths -- Conv1d, full CNN window scoring, CPA trace accumulation, the SoC
// simulator, and the segmentation DSP blocks.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/signal.hpp"
#include "core/model.hpp"
#include "nn/conv1d.hpp"
#include "nn/init.hpp"
#include "sca/cpa.hpp"
#include "trace/scenario.hpp"
#include "trace/soc_simulator.hpp"

using namespace scalocate;

namespace {

nn::Tensor random_tensor(std::vector<std::size_t> shape, std::uint64_t seed) {
  nn::Tensor t(std::move(shape));
  Rng rng(seed);
  for (float& v : t.flat()) v = static_cast<float>(rng.normal());
  return t;
}

void BM_Conv1dForward(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  nn::Conv1d conv(channels, channels, 16);
  Rng rng(1);
  nn::he_normal_init(conv.weight().value, rng);
  const auto x = random_tensor({8, channels, 256}, 2);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x));
  state.SetItemsProcessed(state.iterations() * 8 * 256);
}
BENCHMARK(BM_Conv1dForward)->Arg(16)->Arg(32);

void BM_PaperCnnWindowScore(benchmark::State& state) {
  auto net = core::build_paper_cnn(core::CnnConfig::scaled());
  net->set_training(false);
  const auto x = random_tensor({64, 1, 256}, 3);
  for (auto _ : state) benchmark::DoNotOptimize(net->forward(x));
  state.SetItemsProcessed(state.iterations() * 64);  // windows per second
}
BENCHMARK(BM_PaperCnnWindowScore);

void BM_CpaAddTrace(benchmark::State& state) {
  sca::CpaConfig cfg;
  cfg.segment_length = 2048;
  cfg.aggregate_bin = 32;
  sca::CpaAttack cpa(cfg);
  Rng rng(4);
  std::vector<float> segment(2048);
  for (auto& v : segment) v = static_cast<float>(rng.normal());
  crypto::Block16 pt{};
  for (auto _ : state) {
    rng.fill_bytes(pt.data(), 16);
    cpa.add_trace(segment, pt);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CpaAddTrace);

void BM_SimulatorAesTrace(benchmark::State& state) {
  trace::SocConfig cfg;
  cfg.random_delay = trace::RandomDelayConfig::kRd4;
  trace::SocSimulator sim(cfg);
  auto cipher = crypto::make_cipher(crypto::CipherId::kAes128);
  cipher->set_key(crypto::Key16{});
  std::size_t samples = 0;
  for (auto _ : state) {
    trace::Trace t;
    sim.run_cipher(*cipher, crypto::Block16{}, t);
    samples += t.size();
    benchmark::DoNotOptimize(t.samples.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(samples));
}
BENCHMARK(BM_SimulatorAesTrace);

void BM_MedianFilter(benchmark::State& state) {
  Rng rng(6);
  std::vector<float> xs(100000);
  for (auto& v : xs) v = rng.bernoulli(0.1) ? 1.f : -1.f;
  for (auto _ : state)
    benchmark::DoNotOptimize(signal::median_filter(xs, 7));
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_MedianFilter);

void BM_NormalizedCrossCorrelation(benchmark::State& state) {
  Rng rng(7);
  std::vector<float> sig(50000), ker(512);
  for (auto& v : sig) v = static_cast<float>(rng.normal());
  for (auto& v : ker) v = static_cast<float>(rng.normal());
  for (auto _ : state)
    benchmark::DoNotOptimize(signal::normalized_cross_correlate(sig, ker));
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_NormalizedCrossCorrelation);

}  // namespace

BENCHMARK_MAIN();
