
####### Expanded from @PACKAGE_INIT@ by configure_package_config_file() #######
####### Any changes to this file will be overwritten by the next CMake run ####
####### The input file was scalocateConfig.cmake.in                            ########

get_filename_component(PACKAGE_PREFIX_DIR "${CMAKE_CURRENT_LIST_DIR}/../../../" ABSOLUTE)

macro(set_and_check _var _file)
  set(${_var} "${_file}")
  if(NOT EXISTS "${_file}")
    message(FATAL_ERROR "File or directory ${_file} referenced by variable ${_var} does not exist !")
  endif()
endmacro()

macro(check_required_components _NAME)
  foreach(comp ${${_NAME}_FIND_COMPONENTS})
    if(NOT ${_NAME}_${comp}_FOUND)
      if(${_NAME}_FIND_REQUIRED_${comp})
        set(${_NAME}_FOUND FALSE)
      endif()
    endif()
  endforeach()
endmacro()

####################################################################################

include(CMakeFindDependencyMacro)
find_dependency(Threads)

include("${CMAKE_CURRENT_LIST_DIR}/scalocateTargets.cmake")

check_required_components(scalocate)
