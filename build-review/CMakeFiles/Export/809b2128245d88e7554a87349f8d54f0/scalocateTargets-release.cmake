#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "scalocate::scalocate" for configuration "Release"
set_property(TARGET scalocate::scalocate APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(scalocate::scalocate PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libscalocate.a"
  )

list(APPEND _cmake_import_check_targets scalocate::scalocate )
list(APPEND _cmake_import_check_files_for_scalocate::scalocate "${_IMPORT_PREFIX}/lib/libscalocate.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
