#!/usr/bin/env python3
"""scalocate custom lint: repo contracts no generic analyzer knows about.

Four rules, each enforcing an invariant a previous PR established and that
clang-tidy / compiler warnings cannot see:

  memory-order    std::memory_order uses are confined to an allowlisted set
                  of audited lock-free files, so relaxed-atomic code cannot
                  spread through the tree unreviewed.
  error-taxonomy  every class deriving from scalocate::Error either carries
                  the Transient mixin or is named in the terminal-errors
                  list in src/common/error.hpp, so api::with_retry can
                  never silently misclassify a new exception type.
  metric-drift    every obs metric-name string literal registered in src/
                  appears in the README "Observability" table, and every
                  instrument the table documents is registered somewhere in
                  src/ (bidirectional; dynamically-built names are declared
                  in DYNAMIC_METRIC_LEAVES with a justification).
  header-using    headers contain no `using namespace` at namespace scope
                  (function-local is fine); a header-level using-directive
                  injects names into every includer.

Usage:  python3 tools/scalocate_lint.py [--root DIR] [--rule NAME]
Exit status is non-zero iff any finding is reported. Run from anywhere;
--root defaults to the repository root (the parent of this file's dir).

tests/test_lint.py proves each rule both fires and passes on fixture
snippets; ctest runs that self-test plus this script against the tree.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# ---------------------------------------------------------------------------
# Rule: memory-order
# ---------------------------------------------------------------------------

# Files (path prefixes relative to the repo root, '/'-separated) where
# std::memory_order is allowed, each with the audit rationale. Extending
# lock-free code into a new file means auditing it and adding it here with
# a justification — that review step is the point of the rule.
MEMORY_ORDER_ALLOWLIST = {
    "src/obs/": "lock-free telemetry hot path is the subsystem's contract: "
                "relaxed counters/gauges, per-thread histogram shards "
                "(audited in the obs PR)",
    "src/runtime/fault_injector.": "site arming flags are read on every "
                                   "hot-path probe; relaxed reads, "
                                   "release publication",
    "src/runtime/thread_pool.": "pool stop/quiesce flags polled by workers",
    "src/runtime/spsc_ring.hpp": "wait-free SPSC ingest ring: "
                                 "acquire/release head/tail hand-off "
                                 "(audited in the fleet-batching PR, raced "
                                 "under TSan in CI)",
    "src/runtime/window_batcher.": "cross-session batcher: eof/failed/stat "
                                   "flags exchanged between session "
                                   "producers and the scheduler thread "
                                   "(audited in the fleet-batching PR, "
                                   "raced under TSan in CI)",
    "src/runtime/locator_service.cpp": "job cancel/deadline flags and "
                                       "queue-depth watermark polled by "
                                       "workers without the queue mutex",
    "src/nn/kernels/parallel.cpp": "intra-op work distribution: chunk "
                                   "counter fetch_add and completion "
                                   "latch (audited in the parallel-GEMM "
                                   "PR, raced under TSan in CI)",
}


def _strip_line_comments(line: str) -> str:
    return line.split("//", 1)[0]


def _cxx_files(root: Path) -> list[Path]:
    src = root / "src"
    if not src.is_dir():
        return []
    return sorted(p for p in src.rglob("*") if p.suffix in (".cpp", ".hpp"))


def check_memory_order(root: Path) -> list[str]:
    findings = []
    for path in _cxx_files(root):
        rel = path.relative_to(root).as_posix()
        if any(rel.startswith(prefix) for prefix in MEMORY_ORDER_ALLOWLIST):
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if "memory_order" in _strip_line_comments(line):
                findings.append(
                    f"{rel}:{lineno}: [memory-order] std::memory_order "
                    f"outside the audited lock-free allowlist; audit the "
                    f"file and add it to MEMORY_ORDER_ALLOWLIST in "
                    f"tools/scalocate_lint.py with a justification")
    return findings


# ---------------------------------------------------------------------------
# Rule: error-taxonomy
# ---------------------------------------------------------------------------

_TERMINAL_BEGIN = "scalocate-lint: terminal-errors"
_TERMINAL_END = "scalocate-lint: end-terminal-errors"

# `class X final : bases {` / `struct X : bases {` — possibly spanning lines.
_CLASS_DECL = re.compile(
    r"\b(class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?:\s*([^{;]+)\{")


def _parse_terminal_list(root: Path) -> tuple[set[str], str | None]:
    """Returns (terminal class names, error-or-None)."""
    hpp = root / "src" / "common" / "error.hpp"
    if not hpp.is_file():
        return set(), f"{hpp.relative_to(root).as_posix()}: missing"
    text = hpp.read_text()
    begin = text.find(_TERMINAL_BEGIN)
    end = text.find(_TERMINAL_END)
    if begin < 0 or end < begin:
        return set(), (f"src/common/error.hpp: no '{_TERMINAL_BEGIN}' ... "
                       f"'{_TERMINAL_END}' block to parse")
    names = set(re.findall(r"[A-Za-z_]\w*",
                           text[begin + len(_TERMINAL_BEGIN):end]))
    return names, None


def _class_hierarchy(root: Path) -> dict[str, set[str]]:
    """Maps class name -> direct base names (namespace-qualifiers stripped),
    across all C++ files under src/."""
    bases_of: dict[str, set[str]] = {}
    for path in _cxx_files(root):
        # Strip line comments so commented-out declarations don't parse.
        text = "\n".join(_strip_line_comments(l)
                         for l in path.read_text().splitlines())
        for m in _CLASS_DECL.finditer(text):
            name = m.group(2)
            bases = set()
            for piece in m.group(3).split(","):
                piece = re.sub(r"\b(public|protected|private|virtual)\b",
                               "", piece).strip()
                if piece:
                    bases.add(piece.split("<")[0].split("::")[-1].strip())
            bases_of.setdefault(name, set()).update(bases)
    return bases_of


def _derives_from(name: str, target: str,
                  bases_of: dict[str, set[str]]) -> bool:
    seen, stack = set(), [name]
    while stack:
        cur = stack.pop()
        if cur in seen:
            continue
        seen.add(cur)
        for base in bases_of.get(cur, ()):
            if base == target:
                return True
            stack.append(base)
    return False


def check_error_taxonomy(root: Path) -> list[str]:
    terminal, err = _parse_terminal_list(root)
    if err:
        return [f"{err} [error-taxonomy]"]
    bases_of = _class_hierarchy(root)
    findings = []
    error_classes = sorted(
        n for n in bases_of
        if n != "Error" and _derives_from(n, "Error", bases_of))
    for name in error_classes:
        transient = _derives_from(name, "Transient", bases_of)
        if transient and name in terminal:
            findings.append(
                f"src/common/error.hpp: [error-taxonomy] {name} carries "
                f"Transient but is also listed terminal; remove one")
        elif not transient and name not in terminal:
            findings.append(
                f"[error-taxonomy] {name} derives from scalocate::Error but "
                f"is neither Transient nor in the terminal-errors list in "
                f"src/common/error.hpp; classify it so with_retry semantics "
                f"stay total")
    stale = terminal - set(error_classes)
    for name in sorted(stale):
        findings.append(
            f"src/common/error.hpp: [error-taxonomy] terminal-errors lists "
            f"'{name}' but no such Error subclass exists in src/")
    return findings


# ---------------------------------------------------------------------------
# Rule: metric-drift
# ---------------------------------------------------------------------------

# Instrument names that are assembled at runtime and therefore have no
# single string literal for the code-side scan to find. Keyed by the name's
# final dotted segment (the "leaf"); the value is where/why.
DYNAMIC_METRIC_LEAVES = {
    "ns": "kernels.<kind>.<m>x<n>x<k>.ns — per-shape timing histograms "
          "built at runtime in src/nn/kernels/gemm.cpp shape_histogram()",
}

_REGISTRATION = re.compile(r"(?:counter|gauge|histogram)\s*\(([^()]*)\)")
_STRING_LIT = re.compile(r'"([^"]*)"')
_BACKTICKED = re.compile(r"`([^`]+)`")


def _code_metric_literals(root: Path) -> dict[str, list[str]]:
    """Maps leaf -> ['path:line', ...] for every metric-name string literal
    passed to a counter()/gauge()/histogram() registration in src/."""
    leaves: dict[str, list[str]] = {}
    for path in _cxx_files(root):
        rel = path.relative_to(root).as_posix()
        text = path.read_text()
        for m in _REGISTRATION.finditer(text):
            for lit in _STRING_LIT.findall(m.group(1)):
                if "." not in lit:
                    continue  # ("gemm", m, n, k)-style args, not names
                leaf = lit.rsplit(".", 1)[-1]
                lineno = text.count("\n", 0, m.start()) + 1
                leaves.setdefault(leaf, []).append(f"{rel}:{lineno}")
    return leaves


def _readme_metric_patterns(root: Path) -> tuple[set[str], str | None]:
    """Backticked instrument names from the README Observability table,
    with <placeholders> replaced by '*'. Returns (patterns, error)."""
    readme = root / "README.md"
    if not readme.is_file():
        return set(), "README.md: missing"
    lines = readme.read_text().splitlines()
    try:
        start = next(i for i, l in enumerate(lines)
                     if l.strip() == "## Observability")
    except StopIteration:
        return set(), "README.md: no '## Observability' section"
    patterns: set[str] = set()
    for line in lines[start + 1:]:
        if line.startswith("## "):
            break
        if not line.startswith("|") or set(line.strip("| ")) <= {"-"}:
            continue
        cells = line.split("|")
        if len(cells) < 3:
            continue
        for token in _BACKTICKED.findall(cells[2]):
            token = re.sub(r"<[^>]*>", "*", token)
            if "." in token and re.fullmatch(r"[\w.*]+", token):
                patterns.add(token)
    if not patterns:
        return set(), ("README.md: Observability table has no parseable "
                       "instrument names")
    return patterns, None


def check_metric_drift(root: Path) -> list[str]:
    patterns, err = _readme_metric_patterns(root)
    if err:
        return [f"{err} [metric-drift]"]
    doc_leaves = {p.rsplit(".", 1)[-1] for p in patterns}
    code_leaves = _code_metric_literals(root)
    findings = []
    for leaf, sites in sorted(code_leaves.items()):
        if leaf not in doc_leaves:
            findings.append(
                f"{sites[0]}: [metric-drift] metric name '*.{leaf}' is "
                f"registered in src/ but missing from the README "
                f"Observability table")
    for leaf in sorted(doc_leaves):
        if leaf not in code_leaves and leaf not in DYNAMIC_METRIC_LEAVES:
            findings.append(
                f"README.md: [metric-drift] Observability table documents "
                f"an instrument ending '.{leaf}' but no registration in "
                f"src/ uses that name (if the name is built dynamically, "
                f"declare it in DYNAMIC_METRIC_LEAVES in "
                f"tools/scalocate_lint.py)")
    return findings


# ---------------------------------------------------------------------------
# Rule: header-using
# ---------------------------------------------------------------------------

def _strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals (preserving newlines) so
    brace tracking and `using namespace` matching see only code."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.extend(ch if ch == "\n" else " " for ch in text[i:j])
            i = j
        elif c in "\"'":
            quote, j = c, i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = min(j + 1, n)
            out.append(" ")
        else:
            out.append(c)
            i += 1
    return "".join(out)


def check_header_using(root: Path) -> list[str]:
    findings = []
    for path in _cxx_files(root):
        if path.suffix != ".hpp":
            continue
        rel = path.relative_to(root).as_posix()
        text = _strip_comments_and_strings(path.read_text())
        # Each '{' is a namespace brace iff the code before it ends with a
        # namespace introducer; `using namespace` is at namespace scope iff
        # every enclosing brace is a namespace brace.
        depth_other = 0  # non-namespace braces currently open
        stack = []
        for m in re.finditer(r"[{}]|using\s+namespace\b", text):
            tok = m.group(0)
            if tok == "{":
                is_ns = re.search(r"namespace\s+[\w:]*\s*$|namespace\s*$",
                                  text[max(0, m.start() - 120):m.start()])
                stack.append(bool(is_ns))
                depth_other += 0 if is_ns else 1
            elif tok == "}":
                if stack and not stack.pop():
                    depth_other -= 1
            elif depth_other == 0:
                lineno = text.count("\n", 0, m.start()) + 1
                findings.append(
                    f"{rel}:{lineno}: [header-using] `using namespace` at "
                    f"namespace scope in a header injects names into every "
                    f"includer; qualify the names or move the directive "
                    f"into a function body")
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

RULES = {
    "memory-order": check_memory_order,
    "error-taxonomy": check_error_taxonomy,
    "metric-drift": check_metric_drift,
    "header-using": check_header_using,
}


def run(root: Path, rules=None) -> list[str]:
    findings = []
    for name in rules or RULES:
        findings.extend(RULES[name](root))
    return findings


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parent.parent,
                    help="repository root (default: this file's parent dir)")
    ap.add_argument("--rule", action="append", choices=sorted(RULES),
                    help="run only this rule (repeatable; default: all)")
    args = ap.parse_args(argv)
    findings = run(args.root.resolve(), args.rule)
    for f in findings:
        print(f)
    print(f"scalocate_lint: {len(findings)} finding(s) "
          f"across {len(args.rule or RULES)} rule(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
